// Package packunpack is a Go reproduction of the parallel PACK/UNPACK
// algorithms of Bae and Ranka, "PACK/UNPACK on Coarse-Grained
// Distributed Memory Parallel Machines" (IPPS 1996).
//
// PACK and UNPACK are the Fortran 90 / HPF array construction
// intrinsics: PACK gathers the elements of an array selected by a
// logical mask into a vector, UNPACK scatters a vector back into an
// array under a mask. On a distributed-memory machine the parallel
// algorithm first ranks the selected elements with vector prefix-sum
// and reduction-sum operations (without moving any data), then
// redistributes them with many-to-many personalized communication.
//
// Because no CM-5 is at hand, the library ships its own coarse-grained
// machine: P logical processors as goroutines exchanging real messages
// over channels, with per-processor virtual clocks advanced by the
// paper's two-level cost model (start-up tau, per-word mu, per-op
// delta). Algorithms therefore run end-to-end and report reproducible
// CM-5-flavoured timings.
//
// A minimal PACK looks like this:
//
//	machine := packunpack.NewMachine(packunpack.Config{Procs: 4, Params: packunpack.CM5Params()})
//	layout := packunpack.MustLayout(packunpack.Dim{N: 1024, P: 4, W: 16})
//	err := machine.Run(func(p *packunpack.Proc) {
//	    a, m := buildLocalArrayAndMask(layout, p.Rank())
//	    res, err := packunpack.Pack(p, layout, a, m, packunpack.Options{Scheme: packunpack.CMS})
//	    // res.V is this processor's block of the packed vector.
//	    _ = res
//	    _ = err
//	})
//
// The subpackages under internal/ hold the substrates (machine
// emulator, block-cyclic distribution arithmetic, collectives, ranking,
// redistribution, experiment harness); this package re-exports the
// surface a downstream user needs.
package packunpack

import (
	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/hpf"
	"packunpack/internal/mask"
	"packunpack/internal/metrics"
	"packunpack/internal/pack"
	"packunpack/internal/ranking"
	"packunpack/internal/redist"
	"packunpack/internal/seq"
	"packunpack/internal/sim"
	"packunpack/internal/transport"
)

// ---- Machine (internal/sim) ----

// Params holds the two-level machine model constants (microseconds):
// Tau is the communication start-up cost, Mu the per-word transfer
// time, Delta the cost of a local elementary operation.
type Params = sim.Params

// Config describes a machine to build.
type Config = sim.Config

// Machine is an emulated coarse-grained parallel machine.
type Machine = sim.Machine

// Proc is one logical processor inside a (sim-backend) Machine.Run.
type Proc = sim.Proc

// Endpoint is the backend-independent per-processor transport handle
// every operation takes: *Proc (the emulator) satisfies it, and so do
// the real backend's processors. SPMD bodies written against Endpoint
// run unchanged on either backend.
type Endpoint = transport.Endpoint

// Backend selects a transport implementation: BackendSim is the
// virtual-clock emulator (deterministic, traceable, fault-injectable —
// the byte-exact oracle), BackendReal runs the P processor bodies
// genuinely in parallel on host cores with real wall-clock timing.
type Backend = transport.Backend

const (
	// BackendSim is the internal/sim emulator.
	BackendSim = transport.BackendSim
	// BackendReal is the shared-memory parallel backend.
	BackendReal = transport.BackendReal
)

// ParallelMachine is the backend-independent machine interface: Run an
// SPMD body, then read Stats/MaxClock/Elapsed. Both backends implement
// it.
type ParallelMachine = transport.Machine

// RealConfig describes a real shared-memory machine (BackendReal).
type RealConfig = transport.RealConfig

// ParseBackend maps the packbench -backend flag values to a Backend.
func ParseBackend(s string) (Backend, error) { return transport.ParseBackend(s) }

// NewBackendMachine builds a machine of the requested backend from one
// Config. The sim backend honours every field; the real backend maps
// Procs, Params, Metrics and the tracing switches (events then carry
// wall-clock microsecond timestamps) and rejects only fault injection,
// which needs the emulator's omniscient network.
func NewBackendMachine(b Backend, cfg Config) (ParallelMachine, error) {
	return transport.New(b, cfg)
}

// NewRealMachine builds a real shared-memory parallel machine.
func NewRealMachine(cfg RealConfig) (*transport.RealMachine, error) {
	return transport.NewReal(cfg)
}

// ---- Telemetry (internal/metrics) ----

// MetricsRegistry is the wall-clock telemetry registry both backends
// record into when one is attached (Config.Metrics / RealConfig
// .Metrics): sharded lock-free counters, gauges and log-linear latency
// histograms, snapshot- and Prometheus-exportable. A nil registry is
// fully operational as a no-op, so instrumented code never checks.
type MetricsRegistry = metrics.Registry

// MetricsServer is the live exposition HTTP server (/metrics
// Prometheus text, /vars expvar JSON).
type MetricsServer = metrics.Server

// NewMetricsRegistry builds an empty telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// ServeMetrics starts the live exposition endpoint on addr (":0" picks
// a free port; read it back with Addr). Close the server to release
// the port.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	return metrics.Serve(addr, r)
}

// Stats summarises one processor's activity after a run.
type Stats = sim.Stats

// PhaseStats is a per-phase virtual-time breakdown.
type PhaseStats = sim.PhaseStats

// Sched selects the machine's execution mode (Config.Sched).
type Sched = sim.Sched

const (
	// SchedGoroutine runs the processors concurrently on goroutines.
	SchedGoroutine = sim.SchedGoroutine
	// SchedCooperative runs them one at a time in deterministic
	// (virtual clock, rank) order with exact deadlock detection.
	SchedCooperative = sim.SchedCooperative
)

// FaultConfig is a seeded, deterministic fault-injection plan for the
// emulated network (Config.Faults): message drop, duplication,
// reordering, extra delay and transient processor stalls. With a plan
// installed, Pack/Unpack ride a reliable transport (sequence numbers,
// ack/timeout/retry, receiver-side dedup) and still return exact
// results; the injection activity is reported in FaultReport.
type FaultConfig = sim.FaultConfig

// FaultCounters tallies fault-injection and recovery activity.
type FaultCounters = sim.FaultCounters

// FaultReport summarises a faulted run: totals, per-rank and per-phase
// counters. Available from Machine.FaultReport after Run.
type FaultReport = sim.FaultReport

// FaultBudgetError reports a send that exhausted its retry budget.
type FaultBudgetError = sim.FaultBudgetError

// ParseFaults parses a fault plan from "seed[:name=value,...]"
// notation, e.g. "42:drop=0.01,dup=0.005" (the cmd/packbench -faults
// syntax).
func ParseFaults(s string) (*FaultConfig, error) { return sim.ParseFaults(s) }

// IsFaultBudget reports whether err is (or wraps) a FaultBudgetError.
func IsFaultBudget(err error) bool { return sim.IsFaultBudget(err) }

// CM5Params returns machine constants flavoured after the CM-5 the
// paper measured on.
func CM5Params() Params { return sim.CM5Params() }

// NewMachine builds a machine; it panics on invalid configurations
// (use sim.New via NewMachineErr for error handling).
func NewMachine(cfg Config) *Machine { return sim.MustNew(cfg) }

// NewMachineErr builds a machine, reporting configuration errors.
func NewMachineErr(cfg Config) (*Machine, error) { return sim.New(cfg) }

// ---- Distribution (internal/dist) ----

// Dim describes the block-cyclic distribution of one array dimension:
// global extent N over P processors with block size W.
type Dim = dist.Dim

// Layout describes the distribution of a rank-d array over a logical
// processor grid; Dims[0] is dimension 0 (fastest-varying).
type Layout = dist.Layout

// BlockVector describes the block distribution of the packed result
// vector (or UNPACK's input vector).
type BlockVector = dist.BlockVector

// VectorDist describes a general block-cyclic vector distribution —
// the distribution of Pack's result vector and Unpack's input vector
// (Options.VectorW; 0 is the paper's block default).
type VectorDist = dist.VectorDist

// NewVectorDist builds a vector distribution of size elements over p
// processors with block size w (0 = block).
func NewVectorDist(size, p, w int) (VectorDist, error) { return dist.NewVectorDist(size, p, w) }

// NewLayout validates and builds a layout (dimension 0 first).
func NewLayout(dims ...Dim) (*Layout, error) { return dist.NewLayout(dims...) }

// MustLayout is NewLayout for layouts known to be valid.
func MustLayout(dims ...Dim) *Layout { return dist.MustLayout(dims...) }

// BlockLayout returns the all-block layout with the same shape and
// grid as l — the target of the preliminary redistribution schemes.
func BlockLayout(l *Layout) *Layout { return redist.BlockLayout(l) }

// ParseDist parses an HPF DISTRIBUTE directive against a global array
// shape (dimension 0 first), e.g.
//
//	ParseDist("CYCLIC(2), BLOCK ONTO 4x4", 64, 64)
//
// Accepted per-dimension forms: BLOCK, CYCLIC, CYCLIC(k), and * (kept
// on one processor). The paper's divisibility assumptions must hold.
func ParseDist(spec string, shape ...int) (*Layout, error) { return hpf.ParseDist(spec, shape...) }

// ParseDistGeneral is ParseDist without divisibility assumptions; the
// result works with PackGeneral/UnpackGeneral.
func ParseDistGeneral(spec string, shape ...int) (*GeneralLayout, error) {
	return hpf.ParseDistGeneral(spec, shape...)
}

// FormatDist renders a layout's dimensions back in directive notation.
func FormatDist(l *Layout) string { return hpf.Format(l.Dims) }

// Scatter splits a flat row-major global array into per-processor
// local arrays (test and example setup helper).
func Scatter[T any](l *Layout, global []T) [][]T { return dist.Scatter(l, global) }

// Gather reassembles the flat global array from per-processor locals.
func Gather[T any](l *Layout, locals [][]T) []T { return dist.Gather(l, locals) }

// GeneralLayout describes a block-cyclic distribution with arbitrary
// extents — the paper's divisibility assumptions (P_i | N_i,
// W_i | L_i) lifted. Local arrays are ragged (LocalShapeAt /
// LocalSizeAt); PACK/UNPACK handle them by padding each dimension to
// the next tile multiple and masking the padding out, which preserves
// every rank.
type GeneralLayout = dist.GeneralLayout

// NewGeneralLayout builds a general layout (dimension 0 first) under
// relaxed validation.
func NewGeneralLayout(dims ...Dim) (*GeneralLayout, error) { return dist.NewGeneralLayout(dims...) }

// MustGeneralLayout is NewGeneralLayout for layouts known to be valid.
func MustGeneralLayout(dims ...Dim) *GeneralLayout { return dist.MustGeneralLayout(dims...) }

// ScatterGeneral splits a flat global array into ragged per-processor
// locals.
func ScatterGeneral[T any](l *GeneralLayout, global []T) [][]T {
	return dist.ScatterGeneral(l, global)
}

// GatherGeneral reassembles the flat global array from ragged locals.
func GatherGeneral[T any](l *GeneralLayout, locals [][]T) []T {
	return dist.GatherGeneral(l, locals)
}

// ---- Schemes and options (internal/pack, internal/comm) ----

// Scheme selects the storage/message scheme of Section 6 of the paper.
type Scheme = pack.Scheme

const (
	// SSS is the simple storage scheme: per-element records,
	// (datum, rank) pair messages.
	SSS = pack.SchemeSSS
	// CSS is the compact storage scheme: no per-element records,
	// counter/base-rank comparison plus a second slice scan.
	CSS = pack.SchemeCSS
	// CMS is the compact message scheme: CSS storage plus run-length
	// (base rank, count, data...) segment messages. PACK only.
	CMS = pack.SchemeCMS
)

// PRSAlgorithm selects the prefix-reduction-sum variant.
type PRSAlgorithm = comm.PRSAlgorithm

const (
	// PRSAuto applies the paper's rule: direct for small groups or
	// short vectors, split otherwise.
	PRSAuto = comm.PRSAuto
	// PRSDirect is the direct (recursive-doubling) algorithm.
	PRSDirect = comm.PRSDirect
	// PRSSplit is the split algorithm with a P-independent bandwidth
	// term.
	PRSSplit = comm.PRSSplit
)

// A2AOptions tunes the many-to-many personalized communication.
type A2AOptions = comm.A2AOptions

// Options configure Pack/Unpack; the zero value is SSS with the
// paper's defaults.
type Options = pack.Options

// RankingResult exposes the outcome of the ranking stage.
type RankingResult = ranking.Result

// ---- Plan compilation (internal/pack) ----

// Plan is a compiled PACK/UNPACK schedule for one (layout, mask,
// options) configuration on one processor: ranking runs once at
// compile time and every execution moves data with run-length bulk
// copies, skipping the ranking stage entirely.
type Plan = pack.Plan

// PlanCache stores compiled plans keyed by a fingerprint of the
// (layout, mask, options) configuration. Install one in Options.Plans
// and the existing Pack/PackVector/Unpack (and the General variants)
// entry points compile on first sight and reuse on repeats.
type PlanCache = pack.PlanCache

// PlanCacheStats is a snapshot of a cache's hit/miss counters.
type PlanCacheStats = pack.PlanCacheStats

// NewPlanCache returns an empty plan cache, shareable across machines.
func NewPlanCache() *PlanCache { return pack.NewPlanCache() }

// CompilePlan runs the ranking collective once and compiles a
// bulk-copy plan for the calling processor (the explicit two-step
// API); every processor of the machine must call it with the same
// layout and options.
func CompilePlan(p Endpoint, l *Layout, m []bool, opt Options) (*Plan, error) {
	return pack.CompilePlan(p, l, m, opt)
}

// PlanPack executes a compiled plan as PACK with no per-call ranking.
func PlanPack[T any](p Endpoint, pl *Plan, a []T) (*PackResult[T], error) {
	return pack.PlanPack(p, pl, a)
}

// PlanUnpack executes a compiled plan as UNPACK against the plan's
// vector distribution.
func PlanUnpack[T any](p Endpoint, pl *Plan, v []T, field []T) (*UnpackResult[T], error) {
	return pack.PlanUnpack(p, pl, v, field)
}

// PackResult is the outcome of Pack on one processor.
type PackResult[T any] = pack.Result[T]

// UnpackResult is the outcome of Unpack on one processor.
type UnpackResult[T any] = pack.UnpackResult[T]

// ---- Operations ----

// Pack gathers the selected elements of the distributed array into a
// block-distributed result vector. It must be called by every
// processor of the machine with the same layout and options; a and m
// are the caller's local array and mask portions.
func Pack[T any](p Endpoint, l *Layout, a []T, m []bool, opt Options) (*PackResult[T], error) {
	return pack.Pack(p, l, a, m, opt)
}

// PackVector is PACK with the Fortran 90 optional VECTOR argument: the
// result vector takes the pad vector's global length nVec (>= the
// selected count) and keeps the pad values beyond the packed elements.
// pad is the caller's local portion of the pad vector under the result
// distribution.
func PackVector[T any](p Endpoint, l *Layout, a []T, m []bool, pad []T, nVec int, opt Options) (*PackResult[T], error) {
	return pack.PackVector(p, l, a, m, pad, nVec, opt)
}

// Unpack scatters the block-distributed input vector (local portion v,
// global length nPrime >= number of selected elements) into a new
// array under the mask; unselected positions take the field array
// value.
func Unpack[T any](p Endpoint, l *Layout, v []T, nPrime int, m []bool, field []T, opt Options) (*UnpackResult[T], error) {
	return pack.Unpack(p, l, v, nPrime, m, field, opt)
}

// PackGeneral is Pack for arrays with arbitrary (non-divisible)
// extents; a and m are the caller's ragged local portions.
func PackGeneral[T any](p Endpoint, l *GeneralLayout, a []T, m []bool, opt Options) (*PackResult[T], error) {
	return pack.PackGeneral(p, l, a, m, opt)
}

// UnpackGeneral is Unpack for arrays with arbitrary extents.
func UnpackGeneral[T any](p Endpoint, l *GeneralLayout, v []T, nPrime int, m []bool, field []T, opt Options) (*UnpackResult[T], error) {
	return pack.UnpackGeneral(p, l, v, nPrime, m, field, opt)
}

// Rank runs only the ranking stage (Section 5): it computes the global
// rank information of the selected elements without moving any data.
func Rank(p Endpoint, l *Layout, m []bool, keepRecords bool) (*RankingResult, error) {
	return ranking.Rank(p, l, m, ranking.Options{KeepRecords: keepRecords})
}

// Count computes the number of selected elements — the Fortran 90
// COUNT intrinsic (one local scan plus a single-word reduction; far
// cheaper than a full ranking).
func Count(p Endpoint, l *Layout, m []bool) (int, error) { return pack.Count(p, l, m) }

// Merge computes the Fortran 90 MERGE intrinsic (elementwise masked
// selection between two aligned arrays); it is purely local.
func Merge[T any](p Endpoint, l *Layout, tsource, fsource []T, m []bool) ([]T, error) {
	return pack.Merge(p, l, tsource, fsource, m)
}

// CountGeneral is Count for ragged layouts.
func CountGeneral(p Endpoint, l *GeneralLayout, m []bool) (int, error) {
	return pack.CountGeneral(p, l, m)
}

// PackRedistSelected is the paper's Red.1 pipeline for cyclically
// distributed inputs: redistribute only the selected elements to the
// block layout, then PACK with the compact message scheme.
func PackRedistSelected[T any](p Endpoint, l *Layout, a []T, m []bool, opt Options) (*PackResult[T], error) {
	return redist.PackRedistSelected(p, l, a, m, opt)
}

// PackRedistWhole is the paper's Red.2 pipeline: redistribute the
// whole array and mask to the block layout (two-phase communication
// detection), then PACK with the compact message scheme.
func PackRedistWhole[T any](p Endpoint, l *Layout, a []T, m []bool, opt Options) (*PackResult[T], error) {
	return redist.PackRedistWhole(p, l, a, m, opt)
}

// Redistribute moves a distributed array between two block-cyclic
// layouts with the same shape and grid.
func Redistribute[T any](p Endpoint, src, dst *Layout, a []T) ([]T, error) {
	return redist.Redistribute(p, src, dst, a)
}

// ---- Masks (internal/mask) ----

// MaskGen decides mask values from global indices; implementations are
// pure functions so every processor can fill its local portion without
// communication.
type MaskGen = mask.Gen

// RandomMask builds a seeded pseudo-random mask of the given density
// for a global shape (dimension 0 first).
func RandomMask(density float64, seed uint64, shape ...int) MaskGen {
	return mask.NewRandom(density, seed, shape...)
}

// FirstHalfMask is the paper's deterministic 1-D mask: true iff the
// global index is below N/2.
func FirstHalfMask(n int) MaskGen { return mask.FirstHalf{N: n} }

// UpperTriangleMask is the paper's deterministic 2-D mask: true iff
// the dimension-1 index exceeds the dimension-0 index.
func UpperTriangleMask() MaskGen { return mask.UpperTriangle{} }

// FillLocalMask evaluates a mask generator over a processor's local
// portion of the layout.
func FillLocalMask(l *Layout, rank int, g MaskGen) []bool { return mask.FillLocal(l, rank, g) }

// FillGlobalMask evaluates a mask generator over the whole array.
func FillGlobalMask(l *Layout, g MaskGen) []bool { return mask.FillGlobal(l, g) }

// ---- Sequential reference (internal/seq) ----

// SeqPack is the sequential reference PACK (oracle and 1-processor
// baseline).
func SeqPack[T any](a []T, m []bool) []T { return seq.Pack(a, m) }

// SeqPackVector is the sequential reference PACK with the VECTOR
// argument.
func SeqPackVector[T any](a []T, m []bool, vector []T) []T { return seq.PackVector(a, m, vector) }

// SeqUnpack is the sequential reference UNPACK.
func SeqUnpack[T any](v []T, m []bool, f []T) []T { return seq.Unpack(v, m, f) }

// SeqCount returns the number of selected elements.
func SeqCount(m []bool) int { return seq.Count(m) }
