package packunpack_test

import (
	"fmt"

	"packunpack"
)

// Example packs the even-indexed elements of a small distributed array
// into a vector and reports the selected count — the library's whole
// workflow in a dozen lines.
func Example() {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 4, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(packunpack.Dim{N: 16, P: 4, W: 2})

	global := make([]int, 16)
	gmask := make([]bool, 16)
	for i := range global {
		global[i] = i * i
		gmask[i] = i%2 == 0
	}
	locals := packunpack.Scatter(layout, global)
	maskLocals := packunpack.Scatter(layout, gmask)

	packed := make([][]int, 4)
	err := machine.Run(func(p *packunpack.Proc) {
		res, err := packunpack.Pack(p, layout, locals[p.Rank()], maskLocals[p.Rank()],
			packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		packed[p.Rank()] = res.V
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	var v []int
	for _, blk := range packed {
		v = append(v, blk...)
	}
	fmt.Println(v)
	// Output: [0 4 16 36 64 100 144 196]
}

// ExampleParseDist shows the HPF directive front end.
func ExampleParseDist() {
	layout, err := packunpack.ParseDist("CYCLIC(2), BLOCK ONTO 4x4", 64, 64)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(layout.Procs(), packunpack.FormatDist(layout))
	// Output: 16 CYCLIC(2), BLOCK ONTO 4x4
}

// ExampleRank shows the ranking stage on its own: the paper's core
// algorithm computes every selected element's result-vector index
// without moving any data.
func ExampleRank() {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 2})
	layout := packunpack.MustLayout(packunpack.Dim{N: 8, P: 2, W: 2})
	gen := packunpack.FirstHalfMask(8) // select global indices 0..3

	err := machine.Run(func(p *packunpack.Proc) {
		m := packunpack.FillLocalMask(layout, p.Rank(), gen)
		res, err := packunpack.Rank(p, layout, m, false)
		if err != nil {
			panic(err)
		}
		if p.Rank() == 0 {
			fmt.Println("Size:", res.Size, "slice base ranks:", res.PSf)
		}
	})
	if err != nil {
		fmt.Println(err)
	}
	// Processor 0 owns global blocks {0,1} and {4,5}: the first slice
	// starts at rank 0, the second after all four selected elements.

	// Output: Size: 4 slice base ranks: [0 4]
}
