// Benchmarks regenerating the paper's evaluation artifacts, one
// testing.B benchmark per table/figure (see the DESIGN.md experiment
// index). Each iteration runs one representative configuration of the
// artifact on the emulated machine and reports the simulated machine
// time as the custom metric "simms/op" alongside Go's wall-clock
// numbers. Run the full sweeps with: go run ./cmd/packbench -exp all
package packunpack_test

import (
	"testing"

	"packunpack/internal/bench"
	"packunpack/internal/comm"
	"packunpack/internal/dist"
	"packunpack/internal/mask"
	"packunpack/internal/pack"
	"packunpack/internal/sim"
)

// benchRun executes one configuration per iteration and reports the
// simulated time.
func benchRun(b *testing.B, r bench.Run) {
	b.Helper()
	b.ReportAllocs()
	var simMS float64
	for i := 0; i < b.N; i++ {
		met, err := r.Execute()
		if err != nil {
			b.Fatal(err)
		}
		simMS = met.TotalMS
	}
	b.ReportMetric(simMS, "simms/op")
}

func layout1d(n, p, w int) *dist.Layout {
	return dist.MustLayout(dist.Dim{N: n, P: p, W: w})
}

func layout2d(n, pg, w int) *dist.Layout {
	return dist.MustLayout(dist.Dim{N: n, P: pg, W: w}, dist.Dim{N: n, P: pg, W: w})
}

// BenchmarkFig3LocalComputation: Figure 3 — the three PACK schemes'
// local computation, representative point (1-D 16384, 50%, W=16).
func BenchmarkFig3LocalComputation(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 16384)
	for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS, pack.SchemeCMS} {
		b.Run(scheme.String(), func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, 16), Gen: gen,
				Opt: pack.Options{Scheme: scheme}, Mode: bench.ModePack})
		})
	}
}

// BenchmarkFig4PackTotal: Figure 4 — total PACK time across block
// sizes for the winning scheme (CMS).
func BenchmarkFig4PackTotal(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 16384)
	for _, w := range []int{1, 16, 1024} {
		b.Run(map[int]string{1: "cyclic", 16: "bc16", 1024: "block"}[w], func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, w), Gen: gen,
				Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: bench.ModePack})
		})
	}
}

// BenchmarkFig5UnpackTotal: Figure 5 — UNPACK under both schemes.
func BenchmarkFig5UnpackTotal(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 16384)
	for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS} {
		b.Run(scheme.String(), func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, 16), Gen: gen,
				Opt: pack.Options{Scheme: scheme}, Mode: bench.ModeUnpack})
		})
	}
}

// BenchmarkTable1Beta1: Table I — the SSS/CSS comparison at the
// densities whose crossover the table reports (one low- and one
// high-density point at a mid block size).
func BenchmarkTable1Beta1(b *testing.B) {
	for _, d := range []float64{0.1, 0.9} {
		gen := mask.NewRandom(d, 1, 16384)
		for _, scheme := range []pack.Scheme{pack.SchemeSSS, pack.SchemeCSS} {
			b.Run(map[float64]string{0.1: "d10", 0.9: "d90"}[d]+"/"+scheme.String(), func(b *testing.B) {
				benchRun(b, bench.Run{Layout: layout1d(16384, 16, 8), Gen: gen,
					Opt: pack.Options{Scheme: scheme}, Mode: bench.ModePack})
			})
		}
	}
}

// BenchmarkTable2Redistribution: Table II — the cyclic-input pipelines.
func BenchmarkTable2Redistribution(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 256, 256)
	l := layout2d(256, 4, 1)
	b.Run("SSS", func(b *testing.B) {
		benchRun(b, bench.Run{Layout: l, Gen: gen, Opt: pack.Options{Scheme: pack.SchemeSSS}, Mode: bench.ModePack})
	})
	b.Run("Red1", func(b *testing.B) {
		benchRun(b, bench.Run{Layout: l, Gen: gen, Mode: bench.ModeRed1})
	})
	b.Run("Red2", func(b *testing.B) {
		benchRun(b, bench.Run{Layout: l, Gen: gen, Mode: bench.ModeRed2})
	})
}

// BenchmarkScale256: the Section 7 scaling experiment — same local
// size on 16 vs 256 processors.
func BenchmarkScale256(b *testing.B) {
	b.Run("P16", func(b *testing.B) {
		gen := mask.NewRandom(0.5, 1, 65536)
		benchRun(b, bench.Run{Layout: layout1d(65536, 16, 16), Gen: gen,
			Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: bench.ModePack})
	})
	b.Run("P256", func(b *testing.B) {
		gen := mask.NewRandom(0.5, 1, 1048576)
		benchRun(b, bench.Run{Layout: layout1d(1048576, 256, 16), Gen: gen,
			Opt: pack.Options{Scheme: pack.SchemeCMS}, Mode: bench.ModePack})
	})
}

// BenchmarkPrefixReductionSum: the direct/split comparison of
// Section 5.1 / reference [6].
func BenchmarkPrefixReductionSum(b *testing.B) {
	for _, algo := range []comm.PRSAlgorithm{comm.PRSDirect, comm.PRSSplit} {
		for _, m := range []int{64, 8192} {
			b.Run(algo.String()+"/"+map[int]string{64: "M64", 8192: "M8192"}[m], func(b *testing.B) {
				b.ReportAllocs()
				var simMS float64
				for i := 0; i < b.N; i++ {
					machine := sim.MustNew(sim.Config{Procs: 16, Params: sim.CM5Params()})
					if err := machine.Run(func(p *sim.Proc) {
						comm.World(p).PrefixReductionSum(make([]int, m), algo)
					}); err != nil {
						b.Fatal(err)
					}
					simMS = machine.MaxClock() / 1000
				}
				b.ReportMetric(simMS, "simms/op")
			})
		}
	}
}

// BenchmarkAblationSchedule: linear permutation vs naive many-to-many.
func BenchmarkAblationSchedule(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 16384)
	for name, opt := range map[string]comm.A2AOptions{
		"linear": {}, "naive": {Naive: true}, "skipempty": {SkipEmpty: true},
	} {
		b.Run(name, func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, 16), Gen: gen,
				Opt: pack.Options{Scheme: pack.SchemeCMS, A2A: opt}, Mode: bench.ModePack})
		})
	}
}

// BenchmarkAblationScanPolicy: stop-at-count vs whole-slice rescans.
func BenchmarkAblationScanPolicy(b *testing.B) {
	gen := mask.NewRandom(0.3, 1, 16384)
	for name, whole := range map[string]bool{"stop": false, "whole": true} {
		b.Run(name, func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, 64), Gen: gen,
				Opt: pack.Options{Scheme: pack.SchemeCSS, WholeSliceScan: whole}, Mode: bench.ModePack})
		})
	}
}

// BenchmarkAblationCombinedPRS: combined prefix-reduction-sum vs
// separate prefix + reduce collectives.
func BenchmarkAblationCombinedPRS(b *testing.B) {
	gen := mask.NewRandom(0.5, 1, 16384)
	for name, sep := range map[string]bool{"combined": false, "separate": true} {
		b.Run(name, func(b *testing.B) {
			benchRun(b, bench.Run{Layout: layout1d(16384, 16, 1), Gen: gen,
				Opt: pack.Options{Scheme: pack.SchemeSSS, SeparatePrefixReduce: sep}, Mode: bench.ModePack})
		})
	}
}
