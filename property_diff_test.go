package packunpack_test

// Property-based differential test: random layouts (rank 1-7, arbitrary
// extents including zero, arbitrary BLOCK(b)/CYCLIC(b) per dimension,
// arbitrary grids), random mask densities (including all-true and
// all-false), every scheme, both schedulers and optional fault
// schedules are driven through distributed PACK and UNPACK and compared
// against the sequential reference of internal/seq. Every case then
// replays through the transparent plan cache (a cold compiling call
// and a cache-hit call) and must stay byte-identical to the unplanned
// results. Every case is reproducible from its logged seed; a failing
// case is auto-shrunk (extents and grid halved while the failure
// persists) before being reported.

import (
	"fmt"
	"math/rand"
	"testing"

	pu "packunpack"
)

type propCase struct {
	dims     []pu.Dim
	maskKind int     // 0 random, 1 all-true, 2 all-false
	density  float64 // for maskKind 0
	scheme   pu.Scheme
	sched    pu.Sched
	vectorW  int
	faults   *pu.FaultConfig
	valSeed  int64 // seeds array values and mask draws
}

func (c propCase) String() string {
	return fmt.Sprintf("dims=%v maskKind=%d density=%.2f scheme=%v sched=%v vectorW=%d faults=%v valSeed=%d",
		c.dims, c.maskKind, c.density, c.scheme, c.sched, c.vectorW, c.faults.String(), c.valSeed)
}

// drawCase derives one configuration from a case seed. Extent products
// are capped near 400 and grids at 8 processors to keep 200+ cases
// cheap; block sizes may exceed extents and grids may exceed element
// counts on purpose.
func drawCase(rng *rand.Rand) propCase {
	d := 1 + rng.Intn(7)
	dims := make([]pu.Dim, d)
	size, procs := 1, 1
	for i := range dims {
		n := rng.Intn(6)
		if rng.Intn(8) == 0 {
			n = 0 // zero-extent dimension (Fortran 90 allows it)
		}
		if n > 1 && size*n > 400 {
			n = rng.Intn(2)
		}
		if n > 0 {
			size *= n
		}
		p := 1 + rng.Intn(3)
		if procs*p > 8 {
			p = 1
		}
		procs *= p
		dims[i] = pu.Dim{N: n, P: p, W: 1 + rng.Intn(5)}
	}
	c := propCase{
		dims:    dims,
		scheme:  []pu.Scheme{pu.SSS, pu.CSS, pu.CMS}[rng.Intn(3)],
		sched:   []pu.Sched{pu.SchedCooperative, pu.SchedGoroutine}[rng.Intn(2)],
		vectorW: []int{0, 1, 2, 3}[rng.Intn(4)],
		valSeed: rng.Int63(),
	}
	switch k := rng.Intn(20); {
	case k < 3:
		c.maskKind = 1
	case k < 6:
		c.maskKind = 2
	default:
		c.density = rng.Float64()
	}
	if rng.Intn(5) < 2 {
		c.faults = &pu.FaultConfig{
			Seed:    rng.Uint64(),
			Drop:    0.15 * rng.Float64(),
			Dup:     0.15 * rng.Float64(),
			Reorder: 0.2 * rng.Float64(),
			Delay:   0.2 * rng.Float64(),
			Stall:   0.05 * rng.Float64(),
		}
	}
	return c
}

// runPropCase executes one case end to end and returns a description of
// the first divergence from the sequential reference, or nil.
func runPropCase(c propCase) error {
	layout, err := pu.NewGeneralLayout(c.dims...)
	if err != nil {
		return fmt.Errorf("layout: %w", err)
	}
	nGlobal := layout.GlobalSize()
	rng := rand.New(rand.NewSource(c.valSeed))
	global := make([]int, nGlobal)
	gmask := make([]bool, nGlobal)
	for i := range global {
		global[i] = rng.Intn(1 << 20)
		switch c.maskKind {
		case 1:
			gmask[i] = true
		case 2:
			gmask[i] = false
		default:
			gmask[i] = rng.Float64() < c.density
		}
	}

	want := pu.SeqPack(global, gmask)
	uvec := make([]int, len(want))
	for i := range uvec {
		uvec[i] = 1_000_000 + 3*i
	}
	wantUnpack := pu.SeqUnpack(uvec, gmask, global)

	locals := pu.ScatterGeneral(layout, global)
	maskLocals := pu.ScatterGeneral(layout, gmask)
	nprocs := layout.Procs()
	vdist, err := pu.NewVectorDist(len(want), nprocs, c.vectorW)
	if err != nil {
		return fmt.Errorf("vector dist: %w", err)
	}
	uscheme := c.scheme
	if uscheme == pu.CMS {
		uscheme = pu.CSS // CMS is PACK-only
	}

	m := pu.NewMachine(pu.Config{Procs: nprocs, Params: pu.CM5Params(), Sched: c.sched, Faults: c.faults})
	packRes := make([]*pu.PackResult[int], nprocs)
	unpackOut := make([][]int, nprocs)
	err = m.Run(func(p *pu.Proc) {
		opt := pu.Options{Scheme: c.scheme, VectorW: c.vectorW}
		res, err := pu.PackGeneral(p, layout, locals[p.Rank()], maskLocals[p.Rank()], opt)
		if err != nil {
			panic(err)
		}
		packRes[p.Rank()] = res
		lv := make([]int, vdist.LocalLen(p.Rank()))
		for i := range lv {
			lv[i] = uvec[vdist.ToGlobal(p.Rank(), i)]
		}
		opt.Scheme = uscheme
		ur, err := pu.UnpackGeneral(p, layout, lv, len(want), maskLocals[p.Rank()], locals[p.Rank()], opt)
		if err != nil {
			panic(err)
		}
		unpackOut[p.Rank()] = ur.A
	})
	if err != nil {
		return fmt.Errorf("machine run: %w", err)
	}

	got := make([]int, len(want))
	for rank, res := range packRes {
		if res.Ranking.Size != len(want) {
			return fmt.Errorf("rank %d: selected count %d, reference %d", rank, res.Ranking.Size, len(want))
		}
		for i, v := range res.V {
			got[res.Vec.ToGlobal(rank, i)] = v
		}
	}
	if !equalInts(got, want) {
		return fmt.Errorf("pack mismatch:\n got %v\nwant %v", got, want)
	}
	if gotUnpack := pu.GatherGeneral(layout, unpackOut); !equalInts(gotUnpack, wantUnpack) {
		return fmt.Errorf("unpack mismatch:\n got %v\nwant %v", gotUnpack, wantUnpack)
	}

	// Replay the same case through the transparent plan cache on a
	// fresh machine: call 1 compiles per rank (a miss), call 2 hits,
	// and both calls must be byte-identical to the unplanned results
	// above — under the same scheduler and fault schedule.
	cache := pu.NewPlanCache()
	plannedV := make([][2][]int, nprocs)
	plannedA := make([][2][]int, nprocs)
	pm := pu.NewMachine(pu.Config{Procs: nprocs, Params: pu.CM5Params(), Sched: c.sched, Faults: c.faults})
	err = pm.Run(func(p *pu.Proc) {
		for call := 0; call < 2; call++ {
			opt := pu.Options{Scheme: c.scheme, VectorW: c.vectorW, Plans: cache}
			res, err := pu.PackGeneral(p, layout, locals[p.Rank()], maskLocals[p.Rank()], opt)
			if err != nil {
				panic(err)
			}
			plannedV[p.Rank()][call] = res.V
			lv := make([]int, vdist.LocalLen(p.Rank()))
			for i := range lv {
				lv[i] = uvec[vdist.ToGlobal(p.Rank(), i)]
			}
			opt.Scheme = uscheme
			ur, err := pu.UnpackGeneral(p, layout, lv, len(want), maskLocals[p.Rank()], locals[p.Rank()], opt)
			if err != nil {
				panic(err)
			}
			plannedA[p.Rank()][call] = ur.A
		}
	})
	if err != nil {
		return fmt.Errorf("planned machine run: %w", err)
	}
	for rank := 0; rank < nprocs; rank++ {
		for call := 0; call < 2; call++ {
			if !equalInts(plannedV[rank][call], packRes[rank].V) {
				return fmt.Errorf("rank %d planned pack call %d diverges from unplanned:\n got %v\nwant %v",
					rank, call, plannedV[rank][call], packRes[rank].V)
			}
			if !equalInts(plannedA[rank][call], unpackOut[rank]) {
				return fmt.Errorf("rank %d planned unpack call %d diverges from unplanned:\n got %v\nwant %v",
					rank, call, plannedA[rank][call], unpackOut[rank])
			}
		}
	}
	// Two distinct plans per rank (pack and unpack differ at least in
	// vector length), each compiled on call 1 and hit on call 2.
	if st := cache.Stats(); st.Misses != 2*nprocs || st.Hits != 2*nprocs {
		return fmt.Errorf("plan cache stats %+v, want %d misses and %d hits", st, 2*nprocs, 2*nprocs)
	}
	return nil
}

// equalInts compares element-wise, treating nil and empty as equal
// (reflect.DeepEqual does not).
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shrinkCase halves every extent and every grid dimension; repeated
// application drives a failing case toward a minimal reproducer.
func shrinkCase(c propCase) propCase {
	s := c
	s.dims = append([]pu.Dim(nil), c.dims...)
	for i := range s.dims {
		s.dims[i].N /= 2
		if s.dims[i].P > 1 {
			s.dims[i].P = (s.dims[i].P + 1) / 2
		}
	}
	return s
}

func sameDims(a, b []pu.Dim) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPropertyDifferential(t *testing.T) {
	const cases = 220
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < cases; i++ {
		caseSeed := rng.Int63()
		c := drawCase(rand.New(rand.NewSource(caseSeed)))
		err := runPropCase(c)
		if err == nil {
			continue
		}
		// Shrink: keep halving while the failure reproduces.
		small, serr := c, err
		for k := 0; k < 16; k++ {
			cand := shrinkCase(small)
			if sameDims(cand.dims, small.dims) {
				break
			}
			cerr := runPropCase(cand)
			if cerr == nil {
				break
			}
			small, serr = cand, cerr
		}
		t.Fatalf("case %d failed (reproduce with case seed %d):\n  %v\n  error: %v\nshrunk reproducer:\n  %v\n  error: %v",
			i, caseSeed, c, err, small, serr)
	}
}
