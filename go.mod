module packunpack

go 1.24
