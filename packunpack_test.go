package packunpack_test

import (
	"reflect"
	"testing"

	"packunpack"
)

// TestPublicAPIEndToEnd drives the whole public surface: machine,
// layout, masks, pack, unpack, ranking, redistribution.
func TestPublicAPIEndToEnd(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 4, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(packunpack.Dim{N: 48, P: 4, W: 3})

	global := make([]int, 48)
	gmask := make([]bool, 48)
	for i := range global {
		global[i] = 5 * i
		gmask[i] = i%4 != 0
	}
	locals := packunpack.Scatter(layout, global)
	maskLocals := packunpack.Scatter(layout, gmask)

	packed := make([][]int, 4)
	unpacked := make([][]int, 4)
	var size int
	err := machine.Run(func(p *packunpack.Proc) {
		r := p.Rank()
		res, err := packunpack.Pack(p, layout, locals[r], maskLocals[r], packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		packed[r] = res.V
		if r == 0 {
			size = res.Vec.Size
		}

		field := make([]int, layout.LocalSize())
		for i := range field {
			field[i] = -9
		}
		back, err := packunpack.Unpack(p, layout, res.V, res.Vec.Size, maskLocals[r], field, packunpack.Options{Scheme: packunpack.SSS})
		if err != nil {
			panic(err)
		}
		unpacked[r] = back.A
	})
	if err != nil {
		t.Fatal(err)
	}

	want := packunpack.SeqPack(global, gmask)
	if size != len(want) || size != packunpack.SeqCount(gmask) {
		t.Fatalf("Size = %d, want %d", size, len(want))
	}
	var got []int
	for _, b := range packed {
		got = append(got, b...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed mismatch: %v vs %v", got, want)
	}

	field := make([]int, 48)
	for i := range field {
		field[i] = -9
	}
	wantBack := packunpack.SeqUnpack(want, gmask, field)
	gotBack := packunpack.Gather(layout, unpacked)
	if !reflect.DeepEqual(gotBack, wantBack) {
		t.Fatalf("unpacked mismatch")
	}

	if machine.MaxClock() <= 0 {
		t.Fatal("no simulated time recorded")
	}
	stats := machine.Stats()
	if len(stats) != 4 {
		t.Fatalf("want 4 stats, got %d", len(stats))
	}
}

func TestPublicRedistribution(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 4})
	cyclic := packunpack.MustLayout(packunpack.Dim{N: 32, P: 4, W: 1})
	block := packunpack.BlockLayout(cyclic)

	global := make([]int, 32)
	gmask := make([]bool, 32)
	for i := range global {
		global[i] = i + 1
		gmask[i] = i%2 == 0
	}
	locals := packunpack.Scatter(cyclic, global)
	maskLocals := packunpack.Scatter(cyclic, gmask)

	moved := make([][]int, 4)
	red1 := make([][]int, 4)
	red2 := make([][]int, 4)
	err := machine.Run(func(p *packunpack.Proc) {
		r := p.Rank()
		out, err := packunpack.Redistribute(p, cyclic, block, locals[r])
		if err != nil {
			panic(err)
		}
		moved[r] = out

		res1, err := packunpack.PackRedistSelected(p, cyclic, locals[r], maskLocals[r], packunpack.Options{})
		if err != nil {
			panic(err)
		}
		red1[r] = res1.V
		res2, err := packunpack.PackRedistWhole(p, cyclic, locals[r], maskLocals[r], packunpack.Options{})
		if err != nil {
			panic(err)
		}
		red2[r] = res2.V
	})
	if err != nil {
		t.Fatal(err)
	}

	if got := packunpack.Gather(block, moved); !reflect.DeepEqual(got, global) {
		t.Fatalf("Redistribute changed content")
	}
	want := packunpack.SeqPack(global, gmask)
	for name, blocks := range map[string][][]int{"red1": red1, "red2": red2} {
		var got []int
		for _, b := range blocks {
			got = append(got, b...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s pack mismatch: %v vs %v", name, got, want)
		}
	}
}

func TestPublicRankOnly(t *testing.T) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: 2})
	layout := packunpack.MustLayout(packunpack.Dim{N: 16, P: 2, W: 2})
	gen := packunpack.FirstHalfMask(16)
	err := machine.Run(func(p *packunpack.Proc) {
		m := packunpack.FillLocalMask(layout, p.Rank(), gen)
		res, err := packunpack.Rank(p, layout, m, false)
		if err != nil {
			panic(err)
		}
		if res.Size != 8 {
			panic("FirstHalf of 16 should select 8")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPublicMaskHelpers(t *testing.T) {
	layout := packunpack.MustLayout(
		packunpack.Dim{N: 8, P: 2, W: 2},
		packunpack.Dim{N: 8, P: 2, W: 2},
	)
	gm := packunpack.FillGlobalMask(layout, packunpack.UpperTriangleMask())
	count := 0
	for _, b := range gm {
		if b {
			count++
		}
	}
	if count != 8*7/2 {
		t.Fatalf("upper triangle count %d", count)
	}
	rm := packunpack.FillGlobalMask(layout, packunpack.RandomMask(0.5, 1, 8, 8))
	if len(rm) != 64 {
		t.Fatalf("random mask length %d", len(rm))
	}
	if _, err := packunpack.NewMachineErr(packunpack.Config{Procs: 0}); err == nil {
		t.Fatal("NewMachineErr accepted Procs=0")
	}
	if _, err := packunpack.NewLayout(packunpack.Dim{N: 10, P: 3, W: 1}); err == nil {
		t.Fatal("NewLayout accepted an indivisible dimension")
	}
}
