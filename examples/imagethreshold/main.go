// Imagethreshold: a 2-D domain scenario for PACK/UNPACK.
//
// A synthetic grayscale "image" is distributed block-cyclically over a
// 4x4 processor grid, the way an HPF program would align it with a
// stencil computation. The program:
//
//  1. PACKs the bright pixels (intensity above a threshold) into a
//     dense work vector — the classic use of PACK for irregular
//     subsets inside data-parallel code,
//  2. processes the compact vector (tone-maps the bright pixels),
//  3. UNPACKs the processed values back into the image, leaving dark
//     pixels untouched (the field array is the original image).
//
// Run with: go run ./examples/imagethreshold
package main

import (
	"fmt"
	"log"

	"packunpack"
)

const (
	side      = 128 // image is side x side
	pg        = 4   // 4x4 processor grid
	blockW    = 8   // block-cyclic(8) along both dimensions
	threshold = 200
)

// pixel synthesizes a deterministic test pattern with bright blobs.
func pixel(x, y int) int {
	v := (x*x + y*y) % 251
	if (x/16+y/16)%3 == 0 {
		v += 120
	}
	if v > 255 {
		v = 255
	}
	return v
}

// toneMap compresses bright intensities into [200, 230].
func toneMap(v int) int { return 200 + (v-threshold)*30/(255-threshold+1) }

func main() {
	machine := packunpack.NewMachine(packunpack.Config{Procs: pg * pg, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(
		packunpack.Dim{N: side, P: pg, W: blockW}, // dimension 0 (fastest)
		packunpack.Dim{N: side, P: pg, W: blockW}, // dimension 1
	)

	// Build the global image and the brightness mask, then scatter.
	img := make([]int, side*side)
	bright := make([]bool, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := pixel(x, y)
			img[y*side+x] = v
			bright[y*side+x] = v > threshold
		}
	}
	imgLocals := packunpack.Scatter(layout, img)
	maskLocals := packunpack.Scatter(layout, bright)

	outLocals := make([][]int, pg*pg)
	var brightCount int
	err := machine.Run(func(p *packunpack.Proc) {
		r := p.Rank()
		res, err := packunpack.Pack(p, layout, imgLocals[r], maskLocals[r],
			packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		if r == 0 {
			brightCount = res.Vec.Size
		}

		// Process the dense vector locally: perfect load balance, the
		// reason PACK is worth its communication cost.
		for i, v := range res.V {
			res.V[i] = toneMap(v)
		}

		back, err := packunpack.Unpack(p, layout, res.V, res.Vec.Size,
			maskLocals[r], imgLocals[r], packunpack.Options{Scheme: packunpack.CSS})
		if err != nil {
			panic(err)
		}
		outLocals[r] = back.A
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify against the sequential semantics.
	out := packunpack.Gather(layout, outLocals)
	packed := packunpack.SeqPack(img, bright)
	for i := range packed {
		packed[i] = toneMap(packed[i])
	}
	want := packunpack.SeqUnpack(packed, bright, img)
	for i := range want {
		if out[i] != want[i] {
			log.Fatalf("pixel %d: got %d, want %d", i, out[i], want[i])
		}
	}

	fmt.Printf("image %dx%d on a %dx%d grid, block-cyclic(%d)\n", side, side, pg, pg, blockW)
	fmt.Printf("tone-mapped %d bright pixels (%.1f%% of the image)\n",
		brightCount, 100*float64(brightCount)/float64(side*side))
	fmt.Printf("simulated time %.3f ms; result verified against sequential PACK/UNPACK\n",
		machine.MaxClock()/1000)
}
