// Streamcompact: 1-D stream compaction — the workload the paper's
// experiments sweep — comparing the three PACK schemes across mask
// densities and block sizes on the emulated machine.
//
// It prints a small version of the paper's Figure 4 data: total PACK
// time per scheme, so you can watch the SSS -> CMS crossover move with
// the block size.
//
// Run with: go run ./examples/streamcompact
package main

import (
	"fmt"
	"log"

	"packunpack"
)

const (
	n = 16384
	p = 16
)

func measure(w int, density float64, scheme packunpack.Scheme) float64 {
	machine := packunpack.NewMachine(packunpack.Config{Procs: p, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(packunpack.Dim{N: n, P: p, W: w})
	gen := packunpack.RandomMask(density, 7, n)
	err := machine.Run(func(proc *packunpack.Proc) {
		local := make([]int, layout.LocalSize())
		for i := range local {
			local[i] = proc.Rank()*layout.LocalSize() + i
		}
		m := packunpack.FillLocalMask(layout, proc.Rank(), gen)
		if _, err := packunpack.Pack(proc, layout, local, m, packunpack.Options{Scheme: scheme}); err != nil {
			panic(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return machine.MaxClock() / 1000
}

func main() {
	fmt.Printf("stream compaction, N=%d, P=%d (times in simulated ms)\n\n", n, p)
	for _, density := range []float64{0.1, 0.5, 0.9} {
		fmt.Printf("density %.0f%%:\n", density*100)
		fmt.Printf("  %6s  %8s  %8s  %8s  winner\n", "W", "SSS", "CSS", "CMS")
		for _, w := range []int{1, 4, 16, 64, 256, 1024} {
			sss := measure(w, density, packunpack.SSS)
			css := measure(w, density, packunpack.CSS)
			cms := measure(w, density, packunpack.CMS)
			winner := "SSS"
			if css < sss && css <= cms {
				winner = "CSS"
			} else if cms < sss && cms < css {
				winner = "CMS"
			}
			fmt.Printf("  %6d  %8.3f  %8.3f  %8.3f  %s\n", w, sss, css, cms, winner)
		}
		fmt.Println()
	}
	fmt.Println("expected: SSS wins at W=1 (cyclic); CMS takes over as W and density grow.")
}
