// Triangular: extract the strict upper triangle of a distributed
// matrix with PACK — the paper's deterministic "LT" 2-D workload.
//
// Packing a triangle is the motivating case for the ranking algorithm:
// the selected elements are wildly unbalanced across processors (the
// processors owning the top-right corner hold far more of them), yet
// the packed vector comes out perfectly block-balanced. The example
// also shows the cyclic-input redistribution pipelines (Section 6.3)
// on a case where the input really is distributed cyclically.
//
// Run with: go run ./examples/triangular
package main

import (
	"fmt"
	"log"

	"packunpack"
)

const (
	n  = 64 // matrix is n x n
	pg = 4  // 4x4 grid
)

func run(label string, w int, pipeline func(p *packunpack.Proc, l *packunpack.Layout, a []int, m []bool) (*packunpack.PackResult[int], error)) {
	machine := packunpack.NewMachine(packunpack.Config{Procs: pg * pg, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(
		packunpack.Dim{N: n, P: pg, W: w},
		packunpack.Dim{N: n, P: pg, W: w},
	)
	// a(i1, i0) = i1*n + i0 (the global row-major position).
	global := make([]int, n*n)
	for i := range global {
		global[i] = i
	}
	locals := packunpack.Scatter(layout, global)
	gen := packunpack.UpperTriangleMask()

	results := make([]*packunpack.PackResult[int], pg*pg)
	err := machine.Run(func(p *packunpack.Proc) {
		m := packunpack.FillLocalMask(layout, p.Rank(), gen)
		res, err := pipeline(p, layout, locals[p.Rank()], m)
		if err != nil {
			panic(err)
		}
		results[p.Rank()] = res
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify: the packed vector must equal the sequential extraction.
	want := packunpack.SeqPack(global, packunpack.FillGlobalMask(layout, gen))
	var got []int
	minLen, maxLen := 1<<30, 0
	for _, r := range results {
		got = append(got, r.V...)
		if len(r.V) < minLen {
			minLen = len(r.V)
		}
		if len(r.V) > maxLen {
			maxLen = len(r.V)
		}
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("%s: element %d is %d, want %d", label, i, got[i], want[i])
		}
	}
	fmt.Printf("  %-28s %6d elements, per-proc blocks %d..%d, %8.3f ms\n",
		label, len(got), minLen, maxLen, machine.MaxClock()/1000)
}

func main() {
	fmt.Printf("upper-triangle extraction of a %dx%d matrix on a %dx%d grid\n", n, n, pg, pg)
	fmt.Printf("(%d of %d elements selected; input ownership is unbalanced, output is block-balanced)\n\n",
		n*(n-1)/2, n*n)

	fmt.Println("block-cyclic(4) input:")
	run("CMS pack", 4, func(p *packunpack.Proc, l *packunpack.Layout, a []int, m []bool) (*packunpack.PackResult[int], error) {
		return packunpack.Pack(p, l, a, m, packunpack.Options{Scheme: packunpack.CMS})
	})

	fmt.Println("cyclic input (W=1), three ways (Section 6.3):")
	run("SSS pack directly", 1, func(p *packunpack.Proc, l *packunpack.Layout, a []int, m []bool) (*packunpack.PackResult[int], error) {
		return packunpack.Pack(p, l, a, m, packunpack.Options{Scheme: packunpack.SSS})
	})
	run("Red.1 (selected data)", 1, func(p *packunpack.Proc, l *packunpack.Layout, a []int, m []bool) (*packunpack.PackResult[int], error) {
		return packunpack.PackRedistSelected(p, l, a, m, packunpack.Options{})
	})
	run("Red.2 (whole arrays)", 1, func(p *packunpack.Proc, l *packunpack.Layout, a []int, m []bool) (*packunpack.PackResult[int], error) {
		return packunpack.PackRedistWhole(p, l, a, m, packunpack.Options{})
	})
}
