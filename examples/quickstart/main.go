// Quickstart: pack the selected elements of a 1-D distributed array
// into a vector, then unpack them back — the smallest end-to-end use of
// the library.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"packunpack"
)

func main() {
	const (
		N = 64 // global array size
		P = 4  // processors
		W = 4  // block size (block-cyclic distribution)
	)

	machine := packunpack.NewMachine(packunpack.Config{Procs: P, Params: packunpack.CM5Params()})
	layout := packunpack.MustLayout(packunpack.Dim{N: N, P: P, W: W})

	// Global input: a[i] = i*i; mask selects multiples of 3.
	global := make([]int, N)
	gmask := make([]bool, N)
	for i := range global {
		global[i] = i * i
		gmask[i] = i%3 == 0
	}
	locals := packunpack.Scatter(layout, global)
	maskLocals := packunpack.Scatter(layout, gmask)

	packed := make([][]int, P)
	roundTrip := make([][]int, P)
	err := machine.Run(func(p *packunpack.Proc) {
		// PACK: gather the selected squares into a block-distributed
		// vector using the compact message scheme.
		res, err := packunpack.Pack(p, layout, locals[p.Rank()], maskLocals[p.Rank()],
			packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		packed[p.Rank()] = res.V

		// UNPACK: scatter the vector back; unselected positions take
		// the field value -1.
		field := make([]int, layout.LocalSize())
		for i := range field {
			field[i] = -1
		}
		back, err := packunpack.Unpack(p, layout, res.V, res.Vec.Size,
			maskLocals[p.Rank()], field, packunpack.Options{Scheme: packunpack.CSS})
		if err != nil {
			panic(err)
		}
		roundTrip[p.Rank()] = back.A
	})
	if err != nil {
		log.Fatal(err)
	}

	// Check against the sequential reference.
	var v []int
	for _, blk := range packed {
		v = append(v, blk...)
	}
	want := packunpack.SeqPack(global, gmask)
	fmt.Printf("packed %d of %d elements: %v...\n", len(v), N, v[:8])
	for i := range want {
		if v[i] != want[i] {
			log.Fatalf("mismatch at %d: got %d, want %d", i, v[i], want[i])
		}
	}

	back := packunpack.Gather(layout, roundTrip)
	for i := range back {
		want := -1
		if gmask[i] {
			want = global[i]
		}
		if back[i] != want {
			log.Fatalf("round trip mismatch at %d: got %d, want %d", i, back[i], want)
		}
	}
	fmt.Printf("unpack round trip OK; simulated time %.3f ms on %d processors\n",
		machine.MaxClock()/1000, P)
}
