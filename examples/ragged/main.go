// Ragged: PACK/UNPACK on an array whose extents do not satisfy the
// paper's divisibility assumptions (P | N, W | N/P).
//
// The paper assumes divisibility "for the sake of simplicity"; this
// library lifts the restriction by padding each dimension to the next
// tile multiple and masking the padding out, which preserves the rank
// of every real element. The example packs the positive entries of a
// 997-element (prime!) array over 6 processors with block size 7 and
// unpacks them back, verifying against the sequential semantics.
//
// Run with: go run ./examples/ragged
package main

import (
	"fmt"
	"log"

	"packunpack"
)

const (
	n = 997 // prime: no divisibility anywhere
	p = 6
	w = 7
)

func main() {
	machine := packunpack.NewMachine(packunpack.Config{Procs: p, Params: packunpack.CM5Params()})
	layout := packunpack.MustGeneralLayout(packunpack.Dim{N: n, P: p, W: w})

	// Signed test signal; select the positive entries.
	global := make([]int, n)
	gmask := make([]bool, n)
	for i := range global {
		global[i] = (i*i)%23 - 11
		gmask[i] = global[i] > 0
	}
	aLocals := packunpack.ScatterGeneral(layout, global)
	mLocals := packunpack.ScatterGeneral(layout, gmask)

	outs := make([][]int, p)
	var size int
	err := machine.Run(func(proc *packunpack.Proc) {
		r := proc.Rank()
		res, err := packunpack.PackGeneral(proc, layout, aLocals[r], mLocals[r],
			packunpack.Options{Scheme: packunpack.CMS})
		if err != nil {
			panic(err)
		}
		if r == 0 {
			size = res.Ranking.Size
		}
		// Negate the packed values and scatter them back; unselected
		// positions keep the original signal.
		for i := range res.V {
			res.V[i] = -res.V[i]
		}
		back, err := packunpack.UnpackGeneral(proc, layout, res.V, res.Vec.Size,
			mLocals[r], aLocals[r], packunpack.Options{Scheme: packunpack.CSS})
		if err != nil {
			panic(err)
		}
		outs[r] = back.A
	})
	if err != nil {
		log.Fatal(err)
	}

	got := packunpack.GatherGeneral(layout, outs)
	for i := range got {
		want := global[i]
		if gmask[i] {
			want = -want
		}
		if got[i] != want {
			log.Fatalf("element %d: got %d, want %d", i, got[i], want)
		}
	}
	fmt.Printf("ragged array: N=%d over P=%d, cyclic(%d) — no divisibility anywhere\n", n, p, w)
	fmt.Printf("per-processor local sizes:")
	for r := 0; r < p; r++ {
		fmt.Printf(" %d", len(aLocals[r]))
	}
	fmt.Printf("\npacked and sign-flipped %d positive entries, round trip verified; %.3f ms simulated\n",
		size, machine.MaxClock()/1000)
}
